# Empty dependencies file for cpda_algebra_test.
# This may be replaced when dependencies are built.
