file(REMOVE_RECURSE
  "CMakeFiles/cpda_algebra_test.dir/cpda_algebra_test.cc.o"
  "CMakeFiles/cpda_algebra_test.dir/cpda_algebra_test.cc.o.d"
  "cpda_algebra_test"
  "cpda_algebra_test.pdb"
  "cpda_algebra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpda_algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
