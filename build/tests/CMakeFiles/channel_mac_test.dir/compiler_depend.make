# Empty compiler generated dependencies file for channel_mac_test.
# This may be replaced when dependencies are built.
