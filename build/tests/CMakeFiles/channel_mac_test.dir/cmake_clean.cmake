file(REMOVE_RECURSE
  "CMakeFiles/channel_mac_test.dir/channel_mac_test.cc.o"
  "CMakeFiles/channel_mac_test.dir/channel_mac_test.cc.o.d"
  "channel_mac_test"
  "channel_mac_test.pdb"
  "channel_mac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_mac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
