file(REMOVE_RECURSE
  "CMakeFiles/icpda_protocol_test.dir/icpda_protocol_test.cc.o"
  "CMakeFiles/icpda_protocol_test.dir/icpda_protocol_test.cc.o.d"
  "icpda_protocol_test"
  "icpda_protocol_test.pdb"
  "icpda_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icpda_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
