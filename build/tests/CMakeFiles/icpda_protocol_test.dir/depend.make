# Empty dependencies file for icpda_protocol_test.
# This may be replaced when dependencies are built.
