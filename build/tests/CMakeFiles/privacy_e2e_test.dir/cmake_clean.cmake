file(REMOVE_RECURSE
  "CMakeFiles/privacy_e2e_test.dir/privacy_e2e_test.cc.o"
  "CMakeFiles/privacy_e2e_test.dir/privacy_e2e_test.cc.o.d"
  "privacy_e2e_test"
  "privacy_e2e_test.pdb"
  "privacy_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
