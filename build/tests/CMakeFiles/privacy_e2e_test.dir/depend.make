# Empty dependencies file for privacy_e2e_test.
# This may be replaced when dependencies are built.
