file(REMOVE_RECURSE
  "CMakeFiles/wiretap_test.dir/wiretap_test.cc.o"
  "CMakeFiles/wiretap_test.dir/wiretap_test.cc.o.d"
  "wiretap_test"
  "wiretap_test.pdb"
  "wiretap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiretap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
