# Empty dependencies file for wiretap_test.
# This may be replaced when dependencies are built.
