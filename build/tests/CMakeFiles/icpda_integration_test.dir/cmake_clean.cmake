file(REMOVE_RECURSE
  "CMakeFiles/icpda_integration_test.dir/icpda_integration_test.cc.o"
  "CMakeFiles/icpda_integration_test.dir/icpda_integration_test.cc.o.d"
  "icpda_integration_test"
  "icpda_integration_test.pdb"
  "icpda_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icpda_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
