# Empty dependencies file for icpda_integration_test.
# This may be replaced when dependencies are built.
