# Empty dependencies file for adaptive_minmax_test.
# This may be replaced when dependencies are built.
