file(REMOVE_RECURSE
  "CMakeFiles/adaptive_minmax_test.dir/adaptive_minmax_test.cc.o"
  "CMakeFiles/adaptive_minmax_test.dir/adaptive_minmax_test.cc.o.d"
  "adaptive_minmax_test"
  "adaptive_minmax_test.pdb"
  "adaptive_minmax_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_minmax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
