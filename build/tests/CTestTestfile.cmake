# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/channel_mac_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/tag_test[1]_include.cmake")
include("/root/repo/build/tests/icpda_integration_test[1]_include.cmake")
include("/root/repo/build/tests/messages_test[1]_include.cmake")
include("/root/repo/build/tests/cpda_algebra_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/integrity_test[1]_include.cmake")
include("/root/repo/build/tests/attacks_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/smart_test[1]_include.cmake")
include("/root/repo/build/tests/localization_test[1]_include.cmake")
include("/root/repo/build/tests/wiretap_test[1]_include.cmake")
include("/root/repo/build/tests/icpda_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/privacy_e2e_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_minmax_test[1]_include.cmake")
