// Shared plumbing for the experiment-reproduction binaries.
//
// Each bench_* executable regenerates one table/figure of the paper
// (see DESIGN.md section 3): it sweeps the paper's parameter axis,
// runs Monte-Carlo trials of full protocol epochs, and prints the
// rows. Absolute numbers depend on the substrate; the shapes are what
// EXPERIMENTS.md compares against the paper.
//
// ICPDA_TRIALS scales the Monte-Carlo effort (default keeps the whole
// bench suite in the low minutes on a laptop).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "crypto/keyring.h"
#include "net/network.h"
#include "proto/epoch.h"

namespace icpda::bench {

/// Monte-Carlo trials per configuration point.
inline int trials() {
  if (const char* env = std::getenv("ICPDA_TRIALS")) {
    const int t = std::atoi(env);
    if (t > 0) return t;
  }
  return 5;
}

/// The paper-family network sizes (400 m x 400 m field, 50 m range).
inline const std::vector<std::size_t>& paper_sizes() {
  static const std::vector<std::size_t> sizes{200, 300, 400, 500, 600};
  return sizes;
}

inline net::NetworkConfig paper_network(std::size_t n, std::uint64_t seed) {
  net::NetworkConfig cfg;
  cfg.node_count = n;
  cfg.seed = seed;
  return cfg;
}

inline crypto::MasterPairwiseScheme default_keys() {
  return crypto::MasterPairwiseScheme{crypto::Key::from_seed(0x1CDA2009)};
}

/// Per-run seeds: deterministic but distinct per (experiment, point,
/// trial) so adding trials never changes earlier rows.
inline std::uint64_t run_seed(std::uint64_t experiment, std::uint64_t point,
                              std::uint64_t trial) {
  return experiment * 1000003 + point * 1009 + trial + 1;
}

inline void print_header(const char* title, const char* columns) {
  std::printf("# %s\n", title);
  std::printf("# trials per point: %d\n", trials());
  std::printf("%s\n", columns);
}

}  // namespace icpda::bench
