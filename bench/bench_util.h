// Shared plumbing for the experiment-reproduction binaries.
//
// Each bench_* executable regenerates one table/figure of the paper
// (see DESIGN.md section 3): it sweeps the paper's parameter axis,
// runs Monte-Carlo trials of full protocol epochs, and prints the
// rows. Absolute numbers depend on the substrate; the shapes are what
// EXPERIMENTS.md compares against the paper.
//
// ICPDA_TRIALS scales the Monte-Carlo effort (default keeps the whole
// bench suite in the low minutes on a laptop).
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "crypto/keyring.h"
#include "net/network.h"
#include "proto/epoch.h"
#include "sim/rng.h"

namespace icpda::bench {

/// Every experiment's RNG-stream namespace, in one place so no two
/// binaries can reuse an id. Sub-experiments within a binary (F6a vs
/// F6b, the A2 probe vs its epoch runs) get their own entries: seed
/// streams must never overlap across sweeps that interpret the
/// (point, trial) coordinates differently.
enum class Experiment : std::uint64_t {
  kDeployment = 1,          // T1
  kClusterFormation = 2,    // T2
  kMsgOverhead = 3,         // F1
  kCommOverhead = 4,        // F2
  kAccuracy = 5,            // F3
  kPrivacy = 6,             // F4
  kCollusion = 7,           // F5
  kIntegrityDetection = 8,  // F6a
  kIntegrityFalseAlarm = 9, // F6b
  kLocalization = 10,       // F7
  kLatency = 11,            // F8
  kPcSweep = 12,            // A1
  kKeyschemeProbe = 13,     // A2: shared topology probe
  kKeyschemeEpoch = 14,     // A2: per-scheme epoch accuracy (paired across schemes)
  kKeyschemeRing = 15,      // A2: EG ring draws (point = pool size)
  kClusterPolicy = 16,      // A3
  kAdaptivePc = 17,         // A4
  kFault = 18,              // F9
  kAttack = 19,             // A5: Byzantine adversary suite
  kService = 20,            // S1: continuous-query service under load
};

/// Monte-Carlo trials per configuration point.
inline int trials() {
  if (const char* env = std::getenv("ICPDA_TRIALS")) {
    const int t = std::atoi(env);
    if (t > 0) return t;
  }
  return 5;
}

/// Spatial shards per simulated Network (net/shard_engine.h), from
/// ICPDA_SHARDS (also set by the runner's --shards flag). Rows are
/// byte-identical at every value — tests/shard_determinism_test.cc.
/// Garbage is a hard error, not a silent fall-back to 1: a typo'd
/// shard count would quietly produce single-engine scaling numbers.
inline std::size_t shards() {
  const char* env = std::getenv("ICPDA_SHARDS");
  if (!env) return 1;
  char* end = nullptr;
  errno = 0;
  const unsigned long long s = std::strtoull(env, &end, 10);
  if (*env < '0' || *env > '9' || errno != 0 || *end != '\0' || s == 0) {
    std::fprintf(stderr,
                 "ICPDA_SHARDS: expected a positive integer, got '%s'\n", env);
    std::exit(2);
  }
  return static_cast<std::size_t>(s);
}

/// The paper-family network sizes (400 m x 400 m field, 50 m range).
inline const std::vector<std::size_t>& paper_sizes() {
  static const std::vector<std::size_t> sizes{200, 300, 400, 500, 600};
  return sizes;
}

/// The sweep's network-size axis, overridable via ICPDA_N_AXIS — a
/// comma-separated size list (e.g. ICPDA_N_AXIS=2000,3000,4000,5000
/// for the T3 wall-clock scaling sweep, EXPERIMENTS.md). Cell seeds
/// key on the flat point *index*, so an overridden axis is its own
/// deterministic experiment: byte-stable across runs and thread
/// counts for a fixed axis, but its rows are not point-for-point
/// comparable with the default axis.
inline std::vector<double> size_axis(std::vector<double> defaults) {
  const char* env = std::getenv("ICPDA_N_AXIS");
  if (!env || !*env) return defaults;
  std::vector<double> sizes;
  const char* p = env;
  while (*p) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p || v == 0) {
      std::fprintf(stderr, "ICPDA_N_AXIS: bad size list '%s'\n", env);
      std::exit(2);
    }
    sizes.push_back(static_cast<double>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  return sizes;
}

inline net::NetworkConfig paper_network(std::size_t n, std::uint64_t seed) {
  net::NetworkConfig cfg;
  cfg.node_count = n;
  cfg.seed = seed;
  cfg.shards = shards();
  return cfg;
}

inline crypto::MasterPairwiseScheme default_keys() {
  return crypto::MasterPairwiseScheme{crypto::Key::from_seed(0x1CDA2009)};
}

/// Per-run seeds: deterministic but distinct per (experiment, point,
/// trial) so adding trials never changes earlier rows. SplitMix64-
/// chained (sim::seed_mix) — the earlier small-multiplier linear form
/// made (experiment, point, trial) tuples collide: 991·1009 + 84 =
/// 1000003, so (e, 0, 0) equals (e−1, 991, 84), and any trial stride
/// over 1009 (bench_localization used trial·1000 + epoch) bled into
/// neighbouring points' streams.
inline std::uint64_t run_seed(Experiment experiment, std::uint64_t point,
                              std::uint64_t trial) {
  return sim::seed_mix(static_cast<std::uint64_t>(experiment), point, trial);
}

inline void print_header(const char* title, const char* columns) {
  std::printf("# %s\n", title);
  std::printf("# trials per point: %d\n", trials());
  std::printf("%s\n", columns);
}

}  // namespace icpda::bench
