// F4 [reconstructed] — capacity of privacy preservation: P_disclose
// vs the link-compromise probability px, for several cluster sizes,
// measured by the exact rank-test auditor and compared with the
// leading-order closed form px^(2(m-1)). SMART(l=2) rides along as the
// family comparator.
#include <cstdio>

#include "analysis/models.h"
#include "attacks/eavesdropper.h"
#include "bench/bench_util.h"
#include "sim/rng.h"

int main() {
  using namespace icpda;
  bench::print_header(
      "F4: P_disclose vs px (rank-test Monte Carlo vs closed form)",
      "px\tm2_sim\tm2_model\tm3_sim\tm3_model\tm5_sim\tm5_model\tsmart_l2_sim\tsmart_l2_model");
  const double pxs[] = {0.05, 0.1, 0.2, 0.3, 0.4, 0.5};
  const std::size_t trials = static_cast<std::size_t>(bench::trials()) * 400;
  std::size_t row = 0;
  for (const double px : pxs) {
    sim::Rng rng(bench::run_seed(6, row, 0));
    const double m2 = attacks::estimate_disclosure_probability(2, px, trials, rng);
    const double m3 = attacks::estimate_disclosure_probability(3, px, trials, rng);
    const double m5 = attacks::estimate_disclosure_probability(5, px, trials / 2, rng);
    attacks::SmartView smart;
    smart.l = 2;
    smart.incoming = 1;
    smart.px = px;
    const double s2 = smart.estimate(trials, rng);
    std::printf("%.2f\t%.4f\t%.4f\t%.5f\t%.5f\t%.6f\t%.6f\t%.4f\t%.4f\n", px, m2,
                analysis::cpda_disclosure_probability(2, px), m3,
                analysis::cpda_disclosure_probability(3, px), m5,
                analysis::cpda_disclosure_probability(5, px), s2,
                analysis::smart_disclosure_probability(2, 1, px));
    ++row;
  }
  return 0;
}
