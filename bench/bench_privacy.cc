// F4 [reconstructed] — capacity of privacy preservation: P_disclose
// vs the link-compromise probability px, for several cluster sizes,
// measured by the exact rank-test auditor and compared with the
// leading-order closed form px^(2(m-1)). SMART(l=2) rides along as the
// family comparator.
//
// Each Monte-Carlo cell runs a fixed-size chunk of rank-test samples;
// the per-point estimate is the mean over chunks (equal-sized, so the
// reduction is exactly the pooled estimate).
#include "analysis/models.h"
#include "attacks/eavesdropper.h"
#include "bench/bench_util.h"
#include "runner/campaign.h"
#include "sim/rng.h"

namespace {
constexpr std::size_t kSamplesPerCell = 400;
}

int main(int argc, char** argv) {
  using namespace icpda;

  runner::Campaign c;
  c.name = "F4: P_disclose vs px (rank-test Monte Carlo vs closed form)";
  c.label = "bench_privacy";
  c.experiment = static_cast<std::uint64_t>(bench::Experiment::kPrivacy);
  c.sweep.axis("px", {0.05, 0.1, 0.2, 0.3, 0.4, 0.5});
  c.trials = bench::trials();

  c.cell = [](runner::CellContext& ctx) {
    const double px = ctx.point.get("px");
    sim::Rng root(ctx.seed);
    auto rng2 = root.fork("m2");
    auto rng3 = root.fork("m3");
    auto rng5 = root.fork("m5");
    auto rng_smart = root.fork("smart");
    ctx.metrics.observe(
        "m2", attacks::estimate_disclosure_probability(2, px, kSamplesPerCell, rng2));
    ctx.metrics.observe(
        "m3", attacks::estimate_disclosure_probability(3, px, kSamplesPerCell, rng3));
    ctx.metrics.observe(
        "m5", attacks::estimate_disclosure_probability(5, px, kSamplesPerCell / 2, rng5));
    attacks::SmartView smart;
    smart.l = 2;
    smart.incoming = 1;
    smart.px = px;
    ctx.metrics.observe("smart_l2", smart.estimate(kSamplesPerCell, rng_smart));
  };

  c.row = [](const runner::Point& p, const runner::PointSummary& s,
             runner::JsonRow& row) {
    const double px = p.get("px");
    const auto& m = s.metrics;
    row.num("px", px, 2)
        .num("m2_sim", m.stat("m2").mean(), 4)
        .num("m2_model", analysis::cpda_disclosure_probability(2, px), 4)
        .num("m3_sim", m.stat("m3").mean(), 5)
        .num("m3_model", analysis::cpda_disclosure_probability(3, px), 5)
        .num("m5_sim", m.stat("m5").mean(), 6)
        .num("m5_model", analysis::cpda_disclosure_probability(5, px), 6)
        .num("smart_l2_sim", m.stat("smart_l2").mean(), 4)
        .num("smart_l2_model", analysis::smart_disclosure_probability(2, 1, px), 4);
  };

  return runner::bench_main(c, argc, argv);
}
