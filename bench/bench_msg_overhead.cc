// F1 [reconstructed] — protocol messages originated per node:
// measured per-protocol counts vs the closed-form models (TAG = 2,
// SMART = 2 + l-1, iCPDA = f(pc)). MAC ACKs/retransmissions excluded
// here (bench_comm_overhead measures total on-air bytes instead).
#include <cstdio>

#include "analysis/models.h"
#include "baselines/smart.h"
#include "baselines/tag.h"
#include "bench/bench_util.h"
#include "core/icpda.h"
#include "sim/metrics.h"

namespace {

double app_messages(icpda::net::Network& net) {
  // Protocol-originated frames = MAC enqueues (app sends only; ACKs
  // and retransmissions happen below the enqueue point).
  return static_cast<double>(net.metrics().counter("mac.enqueued")) /
         static_cast<double>(net.size());
}

}  // namespace

int main() {
  using namespace icpda;
  bench::print_header("F1: protocol messages originated per node (N=400)",
                      "protocol\tmsgs_per_node\tsem\tmodel");
  const auto keys = bench::default_keys();

  sim::RunningStats tag_msgs;
  sim::RunningStats smart_msgs;
  sim::RunningStats icpda_msgs;
  for (int t = 0; t < bench::trials(); ++t) {
    const auto seed = bench::run_seed(bench::Experiment::kMsgOverhead, 0, static_cast<std::uint64_t>(t));
    {
      net::Network network(bench::paper_network(400, seed));
      baselines::TagConfig cfg;
      baselines::run_tag_epoch(network, cfg, proto::constant_reading(1.0));
      tag_msgs.add(app_messages(network));
    }
    {
      net::Network network(bench::paper_network(400, seed));
      baselines::SmartConfig cfg;
      baselines::run_smart_epoch(network, cfg, proto::constant_reading(1.0), keys);
      smart_msgs.add(app_messages(network));
    }
    {
      net::Network network(bench::paper_network(400, seed));
      core::IcpdaConfig cfg;
      core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
      icpda_msgs.add(app_messages(network));
    }
  }
  std::printf("TAG\t%.2f\t%.2f\t%.2f\n", tag_msgs.mean(), tag_msgs.sem(),
              analysis::tag_messages_per_node());
  std::printf("SMART(l=2)\t%.2f\t%.2f\t%.2f\n", smart_msgs.mean(), smart_msgs.sem(),
              analysis::smart_messages_per_node(2));
  std::printf("iCPDA(pc=0.3)\t%.2f\t%.2f\t%.2f\n", icpda_msgs.mean(), icpda_msgs.sem(),
              analysis::icpda_messages_per_node(0.3, 2));
  return 0;
}
