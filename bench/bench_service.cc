// S1 [extension] — continuous-query service under open-loop load:
// completion-latency percentiles, drop/rejection rates and accuracy as
// the offered query rate sweeps past the service capacity, for two
// admission settings (serialized vs pipelined epochs).
//
// The epoch length is fixed by configuration (~6.6 s with the default
// timing), so the service rate of a single slot is ~1/(epoch + drain
// grace) ≈ 0.10 q/s. The load axis brackets that knee: well below it
// every query completes at the nominal latency; near it queueing
// inflates p99 first (the classic open-loop hockey stick); past it the
// deadline/queue admission policy sheds the excess and the drop rate —
// not the latency of survivors — absorbs the overload. max_in_flight=4
// moves the knee ~4x to the right at identical per-query accuracy,
// which is the point of pipelining the epochs.
//
// Determinism: each cell is one Dispatcher run, a pure function of
// (network seed, service config); rows are byte-identical at any
// --threads (enforced by a cmp smoke test).
#include <vector>

#include "bench/bench_util.h"
#include "runner/campaign.h"
#include "service/dispatcher.h"

int main(int argc, char** argv) {
  using namespace icpda;
  const auto keys = bench::default_keys();
  constexpr std::size_t kNodes = 200;
  constexpr std::uint32_t kQueries = 12;

  runner::Campaign c;
  c.name =
      "S1: continuous-query service (latency percentiles / drop rate / "
      "accuracy vs offered load, serialized vs pipelined)";
  c.label = "bench_service";
  c.experiment = static_cast<std::uint64_t>(bench::Experiment::kService);
  c.sweep.axis("load_qps", {0.05, 0.10, 0.20, 0.40})
      .axis("max_in_flight", {1.0, 4.0});
  c.trials = bench::trials();

  c.cell = [&keys](runner::CellContext& ctx) {
    // The dispatcher drives network.scheduler() directly and is not
    // shard-aware (net/network.h): pin shards = 1 regardless of
    // --shards / ICPDA_SHARDS.
    net::NetworkConfig net_cfg = bench::paper_network(kNodes, ctx.seed);
    net_cfg.shards = 1;
    net::Network network(net_cfg);

    service::ServiceConfig cfg;
    cfg.offered_load_qps = ctx.point.get("load_qps");
    cfg.max_in_flight =
        static_cast<std::uint32_t>(ctx.point.get("max_in_flight"));
    cfg.query_count = kQueries;
    cfg.deadline_s = 30.0;
    cfg.seed = ctx.seed;

    service::Dispatcher dispatcher(network, cfg, &keys,
                                   proto::constant_reading(1.0));
    const sim::SimTime end = dispatcher.run();

    auto& m = ctx.metrics;
    const auto& records = dispatcher.records();
    m.observe("completed", dispatcher.completed());
    m.observe("dropped", dispatcher.dropped());
    m.observe("rejected", dispatcher.rejected());
    m.observe("p50_s", service::latency_percentile(records, 50.0));
    m.observe("p99_s", service::latency_percentile(records, 99.0));
    m.observe("makespan_s", end.seconds());
    for (const auto& r : records) {
      if (r.status != service::QueryStatus::kCompleted) continue;
      m.observe("latency_s", r.latency_s);
      m.observe("queue_wait_s", (r.launched - r.arrival).seconds());
      m.observe("abs_error", r.abs_error);
      m.observe("coverage", r.coverage);
      if (r.accepted) m.add("accepted");
    }
  };

  c.row = [](const runner::Point& p, const runner::PointSummary& s,
             runner::JsonRow& row) {
    const auto& m = s.metrics;
    const double queries = s.trials * static_cast<double>(kQueries);
    row.num("load_qps", p.get("load_qps"), 2)
        .num("max_in_flight", p.get("max_in_flight"), 0)
        .num("queries", queries, 0)
        .num("completed_rate", m.stat("completed").mean() / kQueries, 3)
        .num("drop_rate", m.stat("dropped").mean() / kQueries, 3)
        .num("reject_rate", m.stat("rejected").mean() / kQueries, 3)
        .num("p50_s", m.stat("p50_s").mean(), 3)
        .num("p99_s", m.stat("p99_s").mean(), 3)
        .num("queue_wait_mean_s", m.stat("queue_wait_s").mean(), 3)
        .num("abs_error_mean", m.stat("abs_error").mean(), 4)
        .num("coverage_mean", m.stat("coverage").mean(), 3)
        .num("accepted_rate",
             m.stat("completed").sum() > 0.0
                 ? static_cast<double>(m.counter("accepted")) /
                       m.stat("completed").sum()
                 : 0.0,
             3)
        .num("makespan_mean_s", m.stat("makespan_s").mean(), 1);
  };

  return runner::bench_main(c, argc, argv);
}
