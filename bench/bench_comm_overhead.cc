// F2 — communication overhead (total on-air bytes, including MAC ACKs
// and retransmissions) vs network size, for TAG / SMART / iCPDA —
// the paper's bandwidth-consumption figure.
//
// Each cell runs all three protocols on the *same* deployment seed, so
// the per-N comparison is paired.
//
// With --trace, the iCPDA leg runs under the structured tracer and the
// rows gain per-phase byte columns (phase_*_bytes). Tracing is purely
// observational, so the base columns are byte-identical with and
// without --trace, at any --threads value; each traced cell
// hard-asserts that the per-phase byte sum equals the network's
// channel.tx_bytes counter exactly (conservation), failing the whole
// campaign on any mismatch.
#include <stdexcept>
#include <string>

#include "analysis/trace_report.h"
#include "baselines/smart.h"
#include "baselines/tag.h"
#include "bench/bench_util.h"
#include "core/icpda.h"
#include "runner/campaign.h"
#include "sim/metrics.h"

namespace {

/// Protocol phases reported as row columns, in column order. kDispatch
/// never holds bytes here (scheduler spans stay off).
constexpr icpda::sim::TracePhase kReportedPhases[] = {
    icpda::sim::TracePhase::kNone,
    icpda::sim::TracePhase::kClusterFormation,
    icpda::sim::TracePhase::kShareExchange,
    icpda::sim::TracePhase::kHeadAggregation,
    icpda::sim::TracePhase::kPeerMonitoring,
    icpda::sim::TracePhase::kReport,
    icpda::sim::TracePhase::kRecovery,
};

}  // namespace

int main(int argc, char** argv) {
  using namespace icpda;
  const auto keys = bench::default_keys();

  runner::RunnerOptions options;
  std::string error;
  if (!runner::parse_cli(argc, argv, options, error)) {
    std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
    runner::print_usage(argv[0]);
    return 2;
  }
  if (options.help) {
    runner::print_usage(argv[0]);
    return 0;
  }
  const bool traced = options.trace;

  runner::Campaign c;
  c.name = "F2: total on-air bytes vs network size";
  c.label = "bench_comm_overhead";
  c.experiment = static_cast<std::uint64_t>(bench::Experiment::kCommOverhead);
  // Default axis is the paper's; ICPDA_N_AXIS=2000,3000,4000,5000
  // turns this binary into the T3 scaling sweep (EXPERIMENTS.md).
  c.sweep.axis("n", bench::size_axis({200, 300, 400, 500, 600}));
  c.trials = bench::trials();

  c.cell = [&keys](runner::CellContext& ctx) {
    const std::size_t n = ctx.point.count("n");
    {
      net::Network network(bench::paper_network(n, ctx.seed));
      baselines::TagConfig cfg;
      baselines::run_tag_epoch(network, cfg, proto::constant_reading(1.0));
      ctx.metrics.observe("tag_bytes", static_cast<double>(
                                           network.metrics().counter("channel.tx_bytes")));
    }
    {
      net::Network network(bench::paper_network(n, ctx.seed));
      baselines::SmartConfig cfg;
      baselines::run_smart_epoch(network, cfg, proto::constant_reading(1.0), keys);
      ctx.metrics.observe("smart_bytes", static_cast<double>(
                                             network.metrics().counter("channel.tx_bytes")));
    }
    {
      net::Network network(bench::paper_network(n, ctx.seed));
      if (ctx.trace) {
        // Sender-side byte accounting only: every kTxBytes event must
        // survive ring wrap for the conservation check to be meaningful.
        sim::Tracer::Config tcfg;
        tcfg.rx_events = false;
        tcfg.mac_events = false;
        network.enable_trace(tcfg);
      }
      core::IcpdaConfig cfg;
      core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
      const std::uint64_t total = network.metrics().counter("channel.tx_bytes");
      ctx.metrics.observe("icpda_bytes", static_cast<double>(total));
      if (ctx.trace) {
        if (network.tracer().dropped() != 0) {
          throw std::runtime_error(
              "bench_comm_overhead: trace ring overflow (" +
              std::to_string(network.tracer().dropped()) +
              " events dropped) — conservation unverifiable");
        }
        const auto report = analysis::fold_trace(network.tracer().merged());
        const std::uint64_t phase_sum = report.epoch_tx_bytes(0);
        if (phase_sum != total) {
          throw std::runtime_error(
              "bench_comm_overhead: traced per-phase byte sum " +
              std::to_string(phase_sum) + " != channel.tx_bytes " +
              std::to_string(total) + " (n=" + std::to_string(n) + ")");
        }
        const auto& epoch0 = report.per_epoch.at(0);
        for (const sim::TracePhase phase : kReportedPhases) {
          ctx.metrics.observe(
              std::string("icpda_phase.") + sim::trace_phase_name(phase),
              static_cast<double>(
                  epoch0[static_cast<std::size_t>(phase)].tx_bytes));
        }
      }
    }
  };

  c.row = [traced](const runner::Point& p, const runner::PointSummary& s,
                   runner::JsonRow& row) {
    const double tag = s.metrics.stat("tag_bytes").mean();
    const double smart = s.metrics.stat("smart_bytes").mean();
    const double icpda_b = s.metrics.stat("icpda_bytes").mean();
    row.num("n", static_cast<std::uint64_t>(p.count("n")))
        .num("tag_bytes", tag, 0)
        .num("smart_bytes", smart, 0)
        .num("icpda_bytes", icpda_b, 0)
        .num("icpda_over_tag", tag > 0 ? icpda_b / tag : 0.0, 2);
    if (traced) {
      for (const sim::TracePhase phase : kReportedPhases) {
        const char* name = sim::trace_phase_name(phase);
        row.num(std::string("phase_") + name + "_bytes",
                s.metrics.stat(std::string("icpda_phase.") + name).mean(), 0);
      }
    }
  };

  return runner::run_campaign(c, options);
}
