// F2 — communication overhead (total on-air bytes, including MAC ACKs
// and retransmissions) vs network size, for TAG / SMART / iCPDA —
// the paper's bandwidth-consumption figure.
//
// Each cell runs all three protocols on the *same* deployment seed, so
// the per-N comparison is paired.
#include "baselines/smart.h"
#include "baselines/tag.h"
#include "bench/bench_util.h"
#include "core/icpda.h"
#include "runner/campaign.h"
#include "sim/metrics.h"

int main(int argc, char** argv) {
  using namespace icpda;
  const auto keys = bench::default_keys();

  runner::Campaign c;
  c.name = "F2: total on-air bytes vs network size";
  c.label = "bench_comm_overhead";
  c.experiment = static_cast<std::uint64_t>(bench::Experiment::kCommOverhead);
  c.sweep.axis("n", {200, 300, 400, 500, 600});
  c.trials = bench::trials();

  c.cell = [&keys](runner::CellContext& ctx) {
    const std::size_t n = ctx.point.count("n");
    {
      net::Network network(bench::paper_network(n, ctx.seed));
      baselines::TagConfig cfg;
      baselines::run_tag_epoch(network, cfg, proto::constant_reading(1.0));
      ctx.metrics.observe("tag_bytes", static_cast<double>(
                                           network.metrics().counter("channel.tx_bytes")));
    }
    {
      net::Network network(bench::paper_network(n, ctx.seed));
      baselines::SmartConfig cfg;
      baselines::run_smart_epoch(network, cfg, proto::constant_reading(1.0), keys);
      ctx.metrics.observe("smart_bytes", static_cast<double>(
                                             network.metrics().counter("channel.tx_bytes")));
    }
    {
      net::Network network(bench::paper_network(n, ctx.seed));
      core::IcpdaConfig cfg;
      core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
      ctx.metrics.observe("icpda_bytes", static_cast<double>(
                                             network.metrics().counter("channel.tx_bytes")));
    }
  };

  c.row = [](const runner::Point& p, const runner::PointSummary& s,
             runner::JsonRow& row) {
    const double tag = s.metrics.stat("tag_bytes").mean();
    const double smart = s.metrics.stat("smart_bytes").mean();
    const double icpda_b = s.metrics.stat("icpda_bytes").mean();
    row.num("n", static_cast<std::uint64_t>(p.count("n")))
        .num("tag_bytes", tag, 0)
        .num("smart_bytes", smart, 0)
        .num("icpda_bytes", icpda_b, 0)
        .num("icpda_over_tag", tag > 0 ? icpda_b / tag : 0.0, 2);
  };

  return runner::bench_main(c, argc, argv);
}
