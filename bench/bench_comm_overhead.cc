// F2 — communication overhead (total on-air bytes, including MAC ACKs
// and retransmissions) vs network size, for TAG / SMART / iCPDA —
// the paper's bandwidth-consumption figure.
#include <cstdio>

#include "baselines/smart.h"
#include "baselines/tag.h"
#include "bench/bench_util.h"
#include "core/icpda.h"
#include "sim/metrics.h"

int main() {
  using namespace icpda;
  bench::print_header("F2: total on-air bytes vs network size",
                      "N\ttag_bytes\tsmart_bytes\ticpda_bytes\ticpda/tag");
  const auto keys = bench::default_keys();
  std::size_t row = 0;
  for (const std::size_t n : bench::paper_sizes()) {
    sim::RunningStats tag_bytes;
    sim::RunningStats smart_bytes;
    sim::RunningStats icpda_bytes;
    for (int t = 0; t < bench::trials(); ++t) {
      const auto seed = bench::run_seed(4, row, static_cast<std::uint64_t>(t));
      {
        net::Network network(bench::paper_network(n, seed));
        baselines::TagConfig cfg;
        baselines::run_tag_epoch(network, cfg, proto::constant_reading(1.0));
        tag_bytes.add(static_cast<double>(network.metrics().counter("channel.tx_bytes")));
      }
      {
        net::Network network(bench::paper_network(n, seed));
        baselines::SmartConfig cfg;
        baselines::run_smart_epoch(network, cfg, proto::constant_reading(1.0), keys);
        smart_bytes.add(static_cast<double>(network.metrics().counter("channel.tx_bytes")));
      }
      {
        net::Network network(bench::paper_network(n, seed));
        core::IcpdaConfig cfg;
        core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
        icpda_bytes.add(static_cast<double>(network.metrics().counter("channel.tx_bytes")));
      }
    }
    std::printf("%zu\t%.0f\t%.0f\t%.0f\t%.2f\n", n, tag_bytes.mean(), smart_bytes.mean(),
                icpda_bytes.mean(), icpda_bytes.mean() / tag_bytes.mean());
    ++row;
  }
  return 0;
}
