// F9 [reconstructed] — graceful degradation under node crashes:
// coverage, aggregate accuracy, false-rejection rate and healing
// overhead as the per-epoch crash probability sweeps 0..30%, at
// N in {200, 400, 600}. No attackers: every rejection is a false
// positive caused by crash-induced loss, and the protocol's job is to
// keep that rate at zero while salvaging as much of the surviving
// population as the failover/reroute machinery allows.
//
// Output is one JSON line per (N, crash_rate) point so downstream
// plotting can stream-parse the sweep.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/icpda.h"
#include "sim/metrics.h"

int main() {
  using namespace icpda;
  const auto keys = bench::default_keys();
  const int trials = 2 * bench::trials();

  std::printf("# F9: crash-rate sweep (coverage / accuracy / false rejections / overhead)\n");
  std::printf("# trials per point: %d\n", trials);

  const double crash_rates[] = {0.0, 0.05, 0.10, 0.20, 0.30};
  std::size_t row = 0;
  for (const std::size_t n : {200u, 400u, 600u}) {
    for (const double crash_rate : crash_rates) {
      int rejected = 0;
      sim::RunningStats crashed, coverage, reroutes, failovers, recoveries;
      sim::RunningStats mean_err, tx_attempts;
      double coverage_min = 1.0;
      for (int t = 0; t < trials; ++t) {
        net::Network network(bench::paper_network(
            n, bench::run_seed(9, row, static_cast<std::uint64_t>(t))));
        core::IcpdaConfig cfg;
        // Healing budget: an exhausted MAC retry ladder plus reroute
        // backoff and a watchdog rehand need ~2.5 s beyond the default
        // close slack (see DESIGN.md, fault model).
        cfg.timing.close_slack_s = 2.5;
        core::FaultPlan faults;
        faults.crash_probability = crash_rate;
        const auto out = core::run_icpda_epoch(
            network, cfg, proto::constant_reading(1.0), keys, {}, faults);
        if (!out.accepted()) ++rejected;
        crashed.add(out.nodes_crashed);
        coverage.add(out.coverage);
        if (out.coverage < coverage_min) coverage_min = out.coverage;
        reroutes.add(out.reroutes);
        failovers.add(
            static_cast<double>(network.metrics().counter("icpda.head_failover") +
                                network.metrics().counter("icpda.backup_report")));
        recoveries.add(
            static_cast<double>(network.metrics().counter("icpda.phase2_recovery")));
        // Readings are the constant 1.0, so the recovered mean should
        // be 1.0 whatever subset of the network survives.
        if (out.result && out.result->count > 0.0) {
          mean_err.add(std::abs(out.result->sum / out.result->count - 1.0));
        }
        tx_attempts.add(
            static_cast<double>(network.metrics().counter("mac.tx_attempts")));
      }
      std::printf(
          "{\"n\": %zu, \"crash_rate\": %.2f, \"epochs\": %d, "
          "\"crashed_mean\": %.1f, \"coverage_mean\": %.3f, "
          "\"coverage_min\": %.3f, \"mean_abs_err\": %.4f, "
          "\"false_rejection_rate\": %.3f, \"reroutes_mean\": %.1f, "
          "\"head_failovers_mean\": %.1f, \"recovery_rounds_mean\": %.1f, "
          "\"mac_tx_attempts_mean\": %.0f}\n",
          n, crash_rate, trials, crashed.mean(), coverage.mean(), coverage_min,
          mean_err.mean(), static_cast<double>(rejected) / trials,
          reroutes.mean(), failovers.mean(), recoveries.mean(),
          tx_attempts.mean());
      std::fflush(stdout);
      ++row;
    }
  }
  return 0;
}
