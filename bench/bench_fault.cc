// F9 [reconstructed] — graceful degradation under node crashes:
// coverage, aggregate accuracy, false-rejection rate and healing
// overhead as the per-epoch crash probability sweeps 0..30%, at
// N in {200, 400, 600}. No attackers: every rejection is a false
// positive caused by crash-induced loss, and the protocol's job is to
// keep that rate at zero while salvaging as much of the surviving
// population as the failover/reroute machinery allows.
//
// Output is one JSON line per (N, crash_rate) point so downstream
// plotting can stream-parse the sweep.
#include <cmath>

#include "bench/bench_util.h"
#include "core/icpda.h"
#include "runner/campaign.h"
#include "sim/metrics.h"

int main(int argc, char** argv) {
  using namespace icpda;
  const auto keys = bench::default_keys();

  runner::Campaign c;
  c.name = "F9: crash-rate sweep (coverage / accuracy / false rejections / overhead)";
  c.label = "bench_fault";
  c.experiment = static_cast<std::uint64_t>(bench::Experiment::kFault);
  c.sweep.axis("n", {200, 400, 600})
      .axis("crash_rate", {0.0, 0.05, 0.10, 0.20, 0.30});
  c.trials = 2 * bench::trials();

  c.cell = [&keys](runner::CellContext& ctx) {
    net::Network network(
        bench::paper_network(ctx.point.count("n"), ctx.seed));
    core::IcpdaConfig cfg;
    // Healing budget: an exhausted MAC retry ladder plus reroute
    // backoff and a watchdog rehand need ~2.5 s beyond the default
    // close slack (see DESIGN.md, fault model).
    cfg.timing.close_slack_s = 2.5;
    core::FaultPlan faults;
    faults.crash_probability = ctx.point.get("crash_rate");
    const auto out = core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0),
                                           keys, {}, faults);
    auto& m = ctx.metrics;
    if (!out.accepted()) m.add("rejected");
    m.observe("crashed", out.nodes_crashed);
    m.observe("coverage", out.coverage);
    m.observe("reroutes", out.reroutes);
    m.observe("failovers", static_cast<double>(
                               network.metrics().counter("icpda.head_failover") +
                               network.metrics().counter("icpda.backup_report")));
    m.observe("recoveries", static_cast<double>(
                                network.metrics().counter("icpda.phase2_recovery")));
    // Readings are the constant 1.0, so the recovered mean should be
    // 1.0 whatever subset of the network survives.
    if (out.result && out.result->count > 0.0) {
      m.observe("mean_err", std::abs(out.result->sum / out.result->count - 1.0));
    }
    m.observe("tx_attempts",
              static_cast<double>(network.metrics().counter("mac.tx_attempts")));
  };

  c.row = [](const runner::Point& p, const runner::PointSummary& s,
             runner::JsonRow& row) {
    const auto& m = s.metrics;
    row.num("n", static_cast<std::uint64_t>(p.count("n")))
        .num("crash_rate", p.get("crash_rate"), 2)
        .num("epochs", s.trials)
        .num("crashed_mean", m.stat("crashed").mean(), 1)
        .num("coverage_mean", m.stat("coverage").mean(), 3)
        .num("coverage_min", m.stat("coverage").min(), 3)
        .num("mean_abs_err", m.stat("mean_err").mean(), 4)
        .num("false_rejection_rate",
             static_cast<double>(m.counter("rejected")) / s.trials, 3)
        .num("reroutes_mean", m.stat("reroutes").mean(), 1)
        .num("head_failovers_mean", m.stat("failovers").mean(), 1)
        .num("recovery_rounds_mean", m.stat("recoveries").mean(), 1)
        .num("mac_tx_attempts_mean", m.stat("tx_attempts").mean(), 0);
  };

  return runner::bench_main(c, argc, argv);
}
