// A4 (ablation) — fixed vs density-adaptive head election:
// the fixed-pc head count grows linearly with N (so the per-
// neighbourhood head density grows too), while the adaptive rule
// p = min(1, k / hellos_heard) keeps heads-per-neighbourhood roughly
// constant — fewer heads in dense networks, cheaper epochs at equal
// accuracy. This is the iPDA-family adaptation (their Eq. (1)/(2))
// transplanted to cluster election.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/icpda.h"
#include "sim/metrics.h"

int main() {
  using namespace icpda;
  bench::print_header("A4: fixed pc=0.3 vs adaptive k=2 head election",
                      "N\tmode\theads\tmean_cluster\taccuracy\tbytes");
  const auto keys = bench::default_keys();
  std::size_t row = 0;
  for (const std::size_t n : {200u, 400u, 600u}) {
    for (const bool adaptive : {false, true}) {
      sim::RunningStats heads;
      sim::RunningStats acc;
      sim::RunningStats bytes;
      sim::RunningStats cluster_mean;
      for (int t = 0; t < bench::trials(); ++t) {
        net::Network network(bench::paper_network(
            n, bench::run_seed(bench::Experiment::kAdaptivePc, row, static_cast<std::uint64_t>(t))));
        core::IcpdaConfig cfg;
        cfg.adaptive_pc = adaptive;
        const auto out =
            core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
        heads.add(out.heads);
        if (out.result) acc.add(out.result->count / static_cast<double>(n - 1));
        bytes.add(static_cast<double>(network.metrics().counter("channel.tx_bytes")));
        double total = 0;
        double clusters = 0;
        for (const auto& [size, count] : out.cluster_sizes) {
          total += static_cast<double>(size) * count;
          clusters += count;
        }
        if (clusters > 0) cluster_mean.add(total / clusters);
      }
      std::printf("%zu\t%s\t%.1f\t%.2f\t%.3f\t%.0f\n", n,
                  adaptive ? "adaptive" : "fixed", heads.mean(), cluster_mean.mean(),
                  acc.mean(), bytes.mean());
      ++row;
    }
  }
  return 0;
}
