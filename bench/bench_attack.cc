// A5 [extension] — Byzantine adversary suite: disclosure probability,
// aggregate bias, detection rate and availability as the compromised
// fraction sweeps 0..30% for each active attack class, unhardened vs
// hardened (ISSUE tracking note: the issue text labels this table A1;
// A1 was already taken by the pc sweep, so it ships as A5).
//
//   disclosure — Sen–Maitra coalition attack on the CPDA share
//     exchange (arXiv 1201.4532): compromised heads engineer tiny
//     rosters and pool shares + digests; the post-epoch solver
//     (attacks::recover) counts honest values actually determined,
//     and every hit is value-verified against the planted reading.
//     Hardened: min_honest_anonymity=4 roster refusal.
//   pollution — a compromised head forges its own digest entry,
//     shifting its cluster sum by exactly +25. Measured as absolute
//     aggregate bias. Hardened: on-air F self-commitment cross-check.
//   replay — compromised nodes capture F announcements and cluster
//     reports, re-injecting them next epoch (readings change across
//     epochs, so an accepted stale frame biases the result). Hardened:
//     epoch-freshness tags (100% rejection expected).
//   withhold — compromised members starve the Vandermonde solve while
//     still announcing F, so naive recovery re-admits them. Hardened:
//     withholder attribution excludes them from the recovery roster.
//
// Each cell runs 2 epochs on one Network (replay needs a past epoch to
// capture from; the adversary state persists). Benign cells
// (fraction = 0) double as the false-positive control: every detection
// counter must stay zero there.
#include <cmath>
#include <cstdint>
#include <vector>

#include "attacks/sen_maitra.h"
#include "bench/bench_util.h"
#include "core/icpda.h"
#include "runner/campaign.h"
#include "sim/metrics.h"

namespace {

double epoch_reading(std::uint32_t epoch) {
  // Distinct per-epoch readings make replayed frames measurably stale.
  return static_cast<double>(epoch);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace icpda;
  const auto keys = bench::default_keys();
  constexpr std::size_t kNodes = 200;
  constexpr std::uint32_t kEpochs = 2;

  runner::Campaign c;
  c.name =
      "A5: adversary suite (disclosure / bias / detection vs compromised "
      "fraction, unhardened vs hardened)";
  c.label = "bench_attack";
  c.experiment = static_cast<std::uint64_t>(bench::Experiment::kAttack);
  c.sweep.categorical("attack", {"disclosure", "pollution", "replay", "withhold"})
      .axis("fraction", {0.0, 0.1, 0.2, 0.3})
      .categorical("hardened", {"off", "on"});
  c.trials = bench::trials();

  c.cell = [&keys](runner::CellContext& ctx) {
    net::Network network(bench::paper_network(kNodes, ctx.seed));
    const bool hardened = ctx.point.count("hardened") == 1;

    core::AdversaryPlan plan;
    plan.attack =
        static_cast<core::AttackClass>(ctx.point.count("attack") + 1);
    plan.compromise_fraction = ctx.point.get("fraction");
    core::AdversaryState st;

    auto& m = ctx.metrics;
    std::uint32_t epochs_to_accept = kEpochs + 1;
    for (std::uint32_t e = 1; e <= kEpochs; ++e) {
      core::IcpdaConfig cfg;
      cfg.timing.close_slack_s = 2.5;
      if (hardened) {
        // Epoch-freshness tags are universal (and false-positive-free);
        // the behavioural countermeasure is the attacked class's own,
        // so each class is measured against its designed defence and
        // the others' side costs stay out of the cell.
        cfg.hardening.epoch_tag = e;
        switch (plan.attack) {
          case core::AttackClass::kDisclosure:
            cfg.hardening.min_honest_anonymity = 4;
            break;
          case core::AttackClass::kPollution:
            cfg.hardening.digest_crosscheck = true;
            break;
          case core::AttackClass::kWithhold:
            cfg.hardening.attribute_withholders = true;
            break;
          case core::AttackClass::kReplay:  // tags ARE the defence
          case core::AttackClass::kNone:
            break;
        }
      }
      const double reading = epoch_reading(e);
      const auto out = core::run_icpda_epoch(
          network, cfg, proto::constant_reading(reading), keys, plan, st);

      if (!out.accepted()) m.add("rejected_epochs");
      if (out.accepted() && epochs_to_accept > kEpochs) epochs_to_accept = e;
      m.observe("compromised", out.compromised_nodes);
      m.observe("coverage", out.coverage);
      // Attack DETECTIONS claim "someone attacked": they must be zero
      // in benign cells. Roster refusals are a privacy abstention (the
      // anonymity floor declining a risky roster, attack or not) and
      // are tallied separately.
      const std::uint32_t detections =
          out.replay_rejections + out.withholders_flagged + out.crosscheck_alarms;
      m.observe("detections", detections);
      m.observe("rosters_refused", out.rosters_refused);
      if (out.compromised_nodes == 0 && detections > 0) {
        // Benign epoch (nothing compromised) yet a hardening counter
        // fired: a false positive by definition.
        m.add("false_positives", detections);
      }
      // Aggregate bias against the ground truth of the ACCEPTED result:
      // every live reading equals `reading`, so sum should be
      // count * reading whatever subset of the network made it in.
      if (out.accepted() && out.result && out.result->count > 0.0) {
        m.observe("bias",
                  std::abs(out.result->sum - out.result->count * reading));
      }

      // Disclosure post-pass: solve this epoch's coalition ledger while
      // the epoch's compromised set is still current. Every determined
      // value is cross-checked against the planted reading.
      std::uint32_t disclosed = 0;
      std::uint32_t value_verified = 0;
      for (const auto& [key, obs] : st.clusters) {
        if (key.first != st.epoch) continue;
        const auto view = attacks::view_from_observation(obs, st.nodes);
        const auto res = attacks::recover(view);
        disclosed += static_cast<std::uint32_t>(res.disclosed.size());
        if (res.disclosed.empty()) continue;
        const std::vector<double> known(
            view.members.size() - res.honest, reading);
        if (const auto v = attacks::recover_lone_value(view, known);
            v && std::abs(*v - reading) < 1e-6) {
          value_verified += static_cast<std::uint32_t>(res.disclosed.size());
        }
      }
      m.observe("disclosed", disclosed);
      m.observe("disclosed_verified", value_verified);
    }
    m.observe("epochs_to_accept", epochs_to_accept);
    m.observe("replays_injected", st.replays_injected);
    m.observe("shares_withheld", st.shares_withheld);
    m.observe("digests_forged", st.digests_forged);
    m.observe("rosters_engineered", st.rosters_engineered);
    m.observe("attack_events", static_cast<double>(st.replays_injected) +
                                   st.shares_withheld + st.digests_forged +
                                   st.rosters_engineered);
    m.observe("replay_rejections", static_cast<double>(network.metrics().counter(
                                       "icpda.replay_rejected")));
    m.observe("recoveries", static_cast<double>(network.metrics().counter(
                                "icpda.phase2_recovery")));
  };

  c.row = [](const runner::Point& p, const runner::PointSummary& s,
             runner::JsonRow& row) {
    const auto& m = s.metrics;
    row.str("attack", p.label("attack"))
        .num("fraction", p.get("fraction"), 2)
        .str("hardened", p.label("hardened"))
        .num("epochs", s.trials * 2)
        .num("compromised_mean", m.stat("compromised").mean(), 1)
        .num("disclosed_mean", m.stat("disclosed").mean(), 3)
        .num("disclosed_verified_mean", m.stat("disclosed_verified").mean(), 3)
        .num("bias_mean", m.stat("bias").mean(), 3)
        .num("detections_mean", m.stat("detections").mean(), 2)
        .num("rosters_refused_mean", m.stat("rosters_refused").mean(), 1)
        .num("false_positives", m.counter("false_positives"))
        .num("attack_events_mean", m.stat("attack_events").mean(), 1)
        .num("replays_injected_mean", m.stat("replays_injected").mean(), 1)
        .num("replay_rejections_mean", m.stat("replay_rejections").mean(), 1)
        .num("shares_withheld_mean", m.stat("shares_withheld").mean(), 1)
        .num("digests_forged_mean", m.stat("digests_forged").mean(), 1)
        .num("recoveries_mean", m.stat("recoveries").mean(), 1)
        .num("coverage_mean", m.stat("coverage").mean(), 3)
        .num("rejected_rate",
             static_cast<double>(m.counter("rejected_epochs")) /
                 (s.trials * 2.0),
             3)
        .num("epochs_to_accept_mean", m.stat("epochs_to_accept").mean(), 2);
  };

  return runner::bench_main(c, argc, argv);
}
