// F7 [reconstructed] — polluter localization: rounds needed to isolate
// a DoS-ing polluter by participation bisection, vs network size.
// Oracle = full simulated epochs (accept/reject at the base station).
// Expectation: rounds ~ 1.5*log2(N) (accepts are double-checked) +
// confirmation overhead.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/icpda.h"
#include "core/localization.h"
#include "sim/metrics.h"

int main() {
  using namespace icpda;
  bench::print_header("F7: polluter localization rounds vs N (simulated epochs)",
                      "N\ttrials\tisolated\trounds_mean\t1.5*log2N+8");
  const auto keys = bench::default_keys();
  const int trials = std::max(2, bench::trials() / 2);
  std::size_t row = 0;
  for (const std::size_t n : {200u, 400u}) {
    int isolated = 0;
    sim::RunningStats rounds;
    for (int t = 0; t < trials; ++t) {
      const net::NodeId polluter = static_cast<net::NodeId>(1 + (t * 97) % (n - 1));
      std::uint64_t epoch_counter = 0;
      const core::EpochRunner oracle = [&](const net::Bytes& mask) {
        net::Network network(bench::paper_network(
            n, bench::run_seed(bench::Experiment::kLocalization, row, static_cast<std::uint64_t>(t) * 1000 +
                                           epoch_counter++)));
        core::IcpdaConfig cfg;
        cfg.allowed_mask = mask;
        core::AttackPlan attack;
        attack.polluters.insert(polluter);
        attack.delta = 400.0;
        const auto out =
            core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys, attack);
        return out.accepted();
      };
      const auto result = core::localize_polluter(n, oracle, 80);
      if (result.isolated && *result.isolated == polluter) ++isolated;
      rounds.add(result.rounds);
    }
    std::printf("%zu\t%d\t%d\t%.1f\t%.1f\n", n, trials, isolated, rounds.mean(),
                1.5 * std::log2(static_cast<double>(n)) + 8.0);
    ++row;
  }
  return 0;
}
