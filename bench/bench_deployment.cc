// T1 — Network size vs network density (the paper family's Table I).
// Columns: measured average degree over random deployments, the
// unclipped-disc model, and the border-corrected model.
#include <cstdio>

#include "analysis/models.h"
#include "bench/bench_util.h"
#include "net/topology.h"
#include "sim/metrics.h"

int main() {
  using namespace icpda;
  bench::print_header("T1: network size vs average node degree (400x400 m, r=50 m)",
                      "N\tdegree_sim\tsem\tmodel_unclipped\tmodel_border\tpaper");
  const double paper[] = {8.8, 13.7, 18.6, 23.5, 28.4};
  const net::Field field(400, 400);
  std::size_t row = 0;
  for (const std::size_t n : bench::paper_sizes()) {
    sim::RunningStats deg;
    for (int t = 0; t < 4 * bench::trials(); ++t) {
      sim::Rng rng(bench::run_seed(bench::Experiment::kDeployment, row, static_cast<std::uint64_t>(t)));
      deg.add(net::make_random_topology(field, n, 50.0, rng, false).average_degree());
    }
    std::printf("%zu\t%.2f\t%.2f\t%.2f\t%.2f\t%.1f\n", n, deg.mean(), deg.sem(),
                analysis::expected_degree(field, n, 50.0),
                analysis::expected_degree_border_corrected(field, n, 50.0),
                paper[row]);
    ++row;
  }
  return 0;
}
