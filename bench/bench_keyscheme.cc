// A2 (ablation) — key management vs privacy: the effective link-
// compromise probability px induced by Eschenauer–Gligor key rings
// (pool size sweep, fixed captured-node budget) compared to ideal
// pairwise keys, and the resulting CPDA disclosure probability.
#include <cstdio>

#include "analysis/models.h"
#include "attacks/wiretap.h"
#include "bench/bench_util.h"
#include "core/icpda.h"
#include "crypto/keyring.h"
#include "sim/metrics.h"

int main() {
  using namespace icpda;
  bench::print_header(
      "A2: key scheme vs effective px (N=300, 10 captured nodes)",
      "scheme\tring_connect_prob\teffective_px\tP_disclose(m=3)\tepoch_accuracy");
  const std::vector<net::NodeId> captured{10, 20, 30, 40, 50, 60, 70, 80, 90, 100};

  // Epoch seeds are deliberately shared across key schemes (same
  // deployments, paired comparison); the kKeyschemeEpoch stream exists
  // for exactly this use and nothing else.
  const auto run_epoch_accuracy = [&](const crypto::KeyScheme& keys,
                                      std::uint64_t seed) {
    net::Network network(bench::paper_network(300, seed));
    core::IcpdaConfig cfg;
    const auto out = core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
    return out.result ? out.result->count / 299.0 : 0.0;
  };

  {
    const auto keys = bench::default_keys();
    net::Network probe(bench::paper_network(300, bench::run_seed(bench::Experiment::kKeyschemeProbe, 0, 0)));
    attacks::Wiretap tap(keys, captured);
    const double px = tap.effective_px(probe.topology());
    sim::RunningStats acc;
    for (int t = 0; t < bench::trials(); ++t) {
      acc.add(run_epoch_accuracy(keys, bench::run_seed(bench::Experiment::kKeyschemeEpoch, 0, static_cast<std::uint64_t>(t))));
    }
    std::printf("pairwise\t1.000\t%.4f\t%.6f\t%.3f\n", px,
                analysis::cpda_disclosure_probability(3, px), acc.mean());
  }

  const std::size_t ring = 60;
  for (const std::size_t pool : {500u, 1000u, 2000u, 5000u, 10000u}) {
    sim::Rng rng(bench::run_seed(bench::Experiment::kKeyschemeRing, pool, 0));
    const crypto::EgPredistribution keys(300, pool, ring, rng);
    net::Network probe(bench::paper_network(300, bench::run_seed(bench::Experiment::kKeyschemeProbe, 0, 0)));
    attacks::Wiretap tap(keys, captured);
    const double px = tap.effective_px(probe.topology());
    sim::RunningStats acc;
    for (int t = 0; t < bench::trials(); ++t) {
      acc.add(run_epoch_accuracy(keys, bench::run_seed(bench::Experiment::kKeyschemeEpoch, 0, static_cast<std::uint64_t>(t))));
    }
    std::printf("EG(P=%zu,k=%zu)\t%.3f\t%.4f\t%.6f\t%.3f\n", pool, ring,
                crypto::EgPredistribution::connect_probability(pool, ring), px,
                analysis::cpda_disclosure_probability(3, px), acc.mean());
  }
  return 0;
}
