// F6 [reconstructed] — capacity of detecting data pollution:
// (a) detection rate vs pollution magnitude (one compromised
//     aggregator grabbing a head role per epoch),
// (b) honest-run false-rejection rate (the Th trade-off),
// at N = 400, across Monte-Carlo epochs.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/icpda.h"
#include "sim/metrics.h"

int main() {
  using namespace icpda;
  const auto keys = bench::default_keys();
  const int trials = 3 * bench::trials();

  bench::print_header(
      "F6a: pollution detection vs injected delta (N=400, single polluter-head)",
      "delta\tepochs\tpolluted\tdetected\tdetection_rate\tdrop_suspicions");
  const double deltas[] = {2.0, 10.0, 50.0, 200.0, 1000.0};
  std::size_t row = 0;
  for (const double delta : deltas) {
    int polluted = 0;
    int detected = 0;
    sim::RunningStats drops;
    for (int t = 0; t < trials; ++t) {
      net::Network network(bench::paper_network(
          400, bench::run_seed(bench::Experiment::kIntegrityDetection, row, static_cast<std::uint64_t>(t))));
      core::IcpdaConfig cfg;
      core::AttackPlan attack;
      attack.polluters.insert(50 + static_cast<net::NodeId>(t * 13 % 300));
      attack.delta = delta;
      const auto out =
          core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys, attack);
      if (out.pollution_events > 0) {
        ++polluted;
        if (!out.accepted()) ++detected;
      }
      drops.add(out.drop_suspicions);
    }
    std::printf("%.0f\t%d\t%d\t%d\t%.2f\t%.2f\n", delta, trials, polluted, detected,
                polluted ? static_cast<double>(detected) / polluted : 0.0, drops.mean());
    ++row;
  }

  bench::print_header("F6b: honest-run epoch outcomes (false-rejection rate)",
                      "N\tepochs\trejected\tfalse_rejection_rate\tdrop_suspicions");
  for (const std::size_t n : {300u, 400u, 500u}) {
    int rejected = 0;
    sim::RunningStats drops;
    for (int t = 0; t < trials; ++t) {
      net::Network network(bench::paper_network(
          n, bench::run_seed(bench::Experiment::kIntegrityFalseAlarm, n, static_cast<std::uint64_t>(t))));
      core::IcpdaConfig cfg;
      const auto out =
          core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
      if (!out.accepted()) ++rejected;
      drops.add(out.drop_suspicions);
    }
    std::printf("%zu\t%d\t%d\t%.3f\t%.2f\n", n, trials, rejected,
                static_cast<double>(rejected) / trials, drops.mean());
  }
  return 0;
}
