// F5 [reconstructed] — privacy under collusion: probability an honest
// member's reading is exposed when k cluster members collude, by
// cluster size. The paper's claim: privacy survives anything short of
// m-1 colluders.
#include <cstdio>

#include "analysis/models.h"
#include "attacks/eavesdropper.h"
#include "bench/bench_util.h"
#include "sim/rng.h"

int main() {
  using namespace icpda;
  bench::print_header("F5: P_disclose of an honest member vs colluders (rank test)",
                      "m\tcolluders\tsim\tmodel");
  const std::size_t trials = static_cast<std::size_t>(bench::trials()) * 40;
  std::size_t row = 0;
  for (const std::size_t m : {3u, 4u, 5u, 6u}) {
    for (std::size_t k = 0; k < m; ++k) {
      sim::Rng rng(bench::run_seed(bench::Experiment::kCollusion, row, 0));
      const double sim_p = attacks::estimate_collusion_disclosure(m, k, trials, rng);
      std::printf("%zu\t%zu\t%.3f\t%.3f\n", m, k, sim_p,
                  analysis::cpda_collusion_disclosure(m, k));
      ++row;
    }
  }
  return 0;
}
