// F3 — COUNT-aggregation accuracy vs network size: collected count /
// true count, TAG vs iCPDA (the paper's accuracy figure: iCPDA tracks
// TAG closely once the network is dense enough for clustering).
//
// TAG and iCPDA run on the same deployment seed per cell (paired).
#include "baselines/tag.h"
#include "bench/bench_util.h"
#include "core/icpda.h"
#include "runner/campaign.h"
#include "sim/metrics.h"

int main(int argc, char** argv) {
  using namespace icpda;
  const auto keys = bench::default_keys();

  runner::Campaign c;
  c.name = "F3: COUNT accuracy vs network size";
  c.label = "bench_accuracy";
  c.experiment = static_cast<std::uint64_t>(bench::Experiment::kAccuracy);
  c.sweep.axis("n", {200, 300, 400, 500, 600});
  c.trials = bench::trials();

  c.cell = [&keys](runner::CellContext& ctx) {
    const std::size_t n = ctx.point.count("n");
    const double truth = static_cast<double>(n - 1);  // BS holds no reading
    {
      net::Network network(bench::paper_network(n, ctx.seed));
      baselines::TagConfig cfg;
      const auto out = baselines::run_tag_epoch(network, cfg, proto::constant_reading(1.0));
      if (out.result) ctx.metrics.observe("tag_acc", out.result->count / truth);
    }
    {
      net::Network network(bench::paper_network(n, ctx.seed));
      core::IcpdaConfig cfg;
      const auto out = core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
      if (out.result) ctx.metrics.observe("icpda_acc", out.result->count / truth);
      ctx.metrics.observe("covered", static_cast<double>(out.heads + out.members) / truth);
      ctx.metrics.observe("failed", out.clusters_failed);
    }
  };

  c.row = [](const runner::Point& p, const runner::PointSummary& s,
             runner::JsonRow& row) {
    const auto& m = s.metrics;
    row.num("n", static_cast<std::uint64_t>(p.count("n")))
        .num("tag_accuracy", m.stat("tag_acc").mean(), 3)
        .num("tag_sem", m.stat("tag_acc").sem(), 3)
        .num("icpda_accuracy", m.stat("icpda_acc").mean(), 3)
        .num("icpda_sem", m.stat("icpda_acc").sem(), 3)
        .num("icpda_covered", m.stat("covered").mean(), 3)
        .num("icpda_failed_clusters", m.stat("failed").mean(), 1);
  };

  return runner::bench_main(c, argc, argv);
}
