// F3 — COUNT-aggregation accuracy vs network size: collected count /
// true count, TAG vs iCPDA (the paper's accuracy figure: iCPDA tracks
// TAG closely once the network is dense enough for clustering).
#include <cstdio>

#include "baselines/tag.h"
#include "bench/bench_util.h"
#include "core/icpda.h"
#include "sim/metrics.h"

int main() {
  using namespace icpda;
  bench::print_header(
      "F3: COUNT accuracy vs network size",
      "N\ttag_accuracy\tsem\ticpda_accuracy\tsem\ticpda_covered\ticpda_failed_clusters");
  const auto keys = bench::default_keys();
  std::size_t row = 0;
  for (const std::size_t n : bench::paper_sizes()) {
    sim::RunningStats tag_acc;
    sim::RunningStats icpda_acc;
    sim::RunningStats covered;
    sim::RunningStats failed;
    for (int t = 0; t < bench::trials(); ++t) {
      const auto seed = bench::run_seed(5, row, static_cast<std::uint64_t>(t));
      const double truth = static_cast<double>(n - 1);  // BS holds no reading
      {
        net::Network network(bench::paper_network(n, seed));
        baselines::TagConfig cfg;
        const auto out = baselines::run_tag_epoch(network, cfg, proto::constant_reading(1.0));
        if (out.result) tag_acc.add(out.result->count / truth);
      }
      {
        net::Network network(bench::paper_network(n, seed));
        core::IcpdaConfig cfg;
        const auto out =
            core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
        if (out.result) icpda_acc.add(out.result->count / truth);
        covered.add(static_cast<double>(out.heads + out.members) / truth);
        failed.add(out.clusters_failed);
      }
    }
    std::printf("%zu\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.1f\n", n, tag_acc.mean(),
                tag_acc.sem(), icpda_acc.mean(), icpda_acc.sem(), covered.mean(),
                failed.mean());
    ++row;
  }
  return 0;
}
