// A1 (ablation) — the pc trade-off: head probability vs coverage,
// accuracy, bandwidth and privacy degradation. Small pc = big clusters
// (cheap, better privacy, more Phase II fragility); large pc = many
// tiny clusters (expensive, degraded privacy).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/icpda.h"
#include "sim/metrics.h"

int main() {
  using namespace icpda;
  bench::print_header(
      "A1: pc sweep (N=400)",
      "pc\taccuracy\tbytes\tdegraded_privacy_nodes\tfailed_clusters\tunclustered");
  const auto keys = bench::default_keys();
  const double pcs[] = {0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.7};
  std::size_t row = 0;
  for (const double pc : pcs) {
    sim::RunningStats acc;
    sim::RunningStats bytes;
    sim::RunningStats degraded;
    sim::RunningStats failed;
    sim::RunningStats unclustered;
    for (int t = 0; t < bench::trials(); ++t) {
      net::Network network(bench::paper_network(
          400, bench::run_seed(bench::Experiment::kPcSweep, row, static_cast<std::uint64_t>(t))));
      core::IcpdaConfig cfg;
      cfg.pc = pc;
      const auto out =
          core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
      if (out.result) acc.add(out.result->count / 399.0);
      bytes.add(static_cast<double>(network.metrics().counter("channel.tx_bytes")));
      degraded.add(out.degraded_privacy);
      failed.add(out.clusters_failed);
      unclustered.add(out.unclustered);
    }
    std::printf("%.2f\t%.3f\t%.0f\t%.1f\t%.1f\t%.1f\n", pc, acc.mean(), bytes.mean(),
                degraded.mean(), failed.mean(), unclustered.mean());
    ++row;
  }
  return 0;
}
