// F8 [reconstructed] — aggregation latency (query issue to epoch
// close at the base station) vs network size, TAG vs iCPDA. iCPDA
// pays the fixed Phase I/II budget on top of the depth-scheduled
// ascent.
#include <cstdio>

#include "baselines/tag.h"
#include "bench/bench_util.h"
#include "core/icpda.h"
#include "sim/metrics.h"

int main() {
  using namespace icpda;
  bench::print_header("F8: aggregation latency vs network size (seconds, simulated)",
                      "N\ttag_latency\ticpda_latency\ticpda_extra");
  const auto keys = bench::default_keys();
  std::size_t row = 0;
  for (const std::size_t n : bench::paper_sizes()) {
    sim::RunningStats tag_lat;
    sim::RunningStats icpda_lat;
    for (int t = 0; t < bench::trials(); ++t) {
      const auto seed = bench::run_seed(bench::Experiment::kLatency, row, static_cast<std::uint64_t>(t));
      {
        net::Network network(bench::paper_network(n, seed));
        baselines::TagConfig cfg;
        const auto out = baselines::run_tag_epoch(network, cfg, proto::constant_reading(1.0));
        tag_lat.add(out.closed_at.seconds());
      }
      {
        net::Network network(bench::paper_network(n, seed));
        core::IcpdaConfig cfg;
        const auto out =
            core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
        icpda_lat.add(out.closed_at.seconds());
      }
    }
    std::printf("%zu\t%.2f\t%.2f\t%.2f\n", n, tag_lat.mean(), icpda_lat.mean(),
                icpda_lat.mean() - tag_lat.mean());
    ++row;
  }
  return 0;
}
