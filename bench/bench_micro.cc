// Micro-benchmarks (google-benchmark): the hot kernels a deployment
// would care about — share generation / interpolation, sealing,
// PRF throughput, scheduler push/pop/cancel, channel broadcast
// fan-out, topology construction, and full-epoch wall-clock.
//
// The scheduler/channel/epoch kernels feed BENCH_PR4.json (see
// tools/perf_smoke.py): they are the repo's perf-regression baseline,
// so keep their names and Arg lists stable.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <optional>
#include <vector>

#include "bench/bench_util.h"
#include "core/cpda_algebra.h"
#include "core/icpda.h"
#include "crypto/cipher.h"
#include "crypto/keyring.h"
#include "net/network.h"
#include "net/topology.h"
#include "service/dispatcher.h"
#include "sim/rng.h"
#include "sim/scheduler.h"

namespace {

using namespace icpda;

void BM_MakeShares(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(1);
  const auto seeds = core::default_seeds(m);
  const auto value = proto::Aggregate::of(23.5);
  // Arena entry point — what the protocol actually runs per member
  // (the wrapping make_shares() adds one allocation per call).
  std::vector<proto::Aggregate> shares;
  for (auto _ : state) {
    core::make_shares_into(value, seeds, rng, shares);
    benchmark::DoNotOptimize(shares.data());
  }
}
BENCHMARK(BM_MakeShares)->Arg(3)->Arg(5)->Arg(8);

void BM_SolveClusterSum(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(2);
  const auto seeds = core::default_seeds(m);
  std::vector<proto::Aggregate> assembled(m);
  for (auto& a : assembled) a = proto::Aggregate::of(rng.uniform(0.0, 50.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_cluster_sum(seeds, assembled));
  }
}
BENCHMARK(BM_SolveClusterSum)->Arg(3)->Arg(5)->Arg(8);

void BM_SealOpen(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const auto key = crypto::Key::from_seed(7);
  const crypto::Bytes plain(bytes, 0x5A);
  // Arena entry points with warm buffers — the per-cluster-round path.
  crypto::Bytes sealed;
  crypto::Bytes opened;
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    crypto::seal_into(key, ++nonce, plain, sealed);
    benchmark::DoNotOptimize(crypto::open_into(key, sealed, opened));
    benchmark::DoNotOptimize(opened.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_SealOpen)->Arg(32)->Arg(256)->Arg(4096);

void BM_LinkKeyBatch(benchmark::State& state) {
  // One cached key schedule serving a whole member set, vs m
  // independent link_key() sponge re-inits. m = 8 matches the largest
  // specialized cluster size.
  const auto m = static_cast<std::size_t>(state.range(0));
  const crypto::MasterPairwiseScheme keys{crypto::Key::from_seed(11)};
  std::vector<net::NodeId> members(m);
  for (std::size_t i = 0; i < m; ++i) members[i] = static_cast<net::NodeId>(10 + i);
  std::vector<std::optional<crypto::Key>> out;
  for (auto _ : state) {
    keys.link_keys(members[0], members, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_LinkKeyBatch)->Arg(3)->Arg(8);

void BM_Prf64(benchmark::State& state) {
  const auto key = crypto::Key::from_seed(9);
  const crypto::Bytes msg(64, 0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::prf64(key, msg));
  }
}
BENCHMARK(BM_Prf64);

void BM_SchedulerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    for (int i = 0; i < 1000; ++i) {
      sched.after(sim::micros(i % 97 + 1), [] {});
    }
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerChurn);

void BM_SchedulerPushPop(benchmark::State& state) {
  // Fill-then-drain at queue depth n: the pure heap push/pop cost with
  // no cancels. Delays are precomputed so the RNG stays out of the
  // timed region.
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(41);
  std::vector<double> delays(n);
  for (auto& d : delays) d = rng.uniform(1.0, 1000.0);
  for (auto _ : state) {
    sim::Scheduler sched;
    for (std::size_t i = 0; i < n; ++i) {
      sched.after(sim::micros(delays[i]), [] {});
    }
    sched.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_SchedulerPushPop)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SchedulerCancel(benchmark::State& state) {
  // Schedule n, cancel all n in shuffled order, then drain the (empty)
  // queue: isolates the cancel path — the MAC does this for every
  // successfully ACKed unicast, so it is a true hot path.
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(43);
  std::vector<double> delays(n);
  for (auto& d : delays) d = rng.uniform(1.0, 1000.0);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  std::vector<sim::EventId> ids(n);
  for (auto _ : state) {
    sim::Scheduler sched;
    for (std::size_t i = 0; i < n; ++i) {
      ids[i] = sched.after(sim::micros(delays[i]), [] {});
    }
    for (const std::size_t i : order) sched.cancel(ids[i]);
    sched.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_SchedulerCancel)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ChannelBroadcastFanout(benchmark::State& state) {
  // One transmission into a clique of n nodes: reception registration,
  // the per-receiver overlap scan, and n-1 delivery events.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<net::Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({static_cast<double>(i % 16), static_cast<double>(i / 16)});
  }
  net::NetworkConfig cfg;
  net::Network network(net::Topology{std::move(pts), 50.0}, cfg);
  std::uint64_t delivered = 0;
  network.channel().set_delivery(
      [&delivered](net::NodeId, const net::Frame&, net::ReceptionStatus) {
        ++delivered;
      });
  net::Frame frame;
  frame.src = 0;
  frame.payload.assign(64, 0x42);
  for (auto _ : state) {
    network.channel().transmit(0, frame, nullptr);
    network.scheduler().run();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
}
BENCHMARK(BM_ChannelBroadcastFanout)->Arg(32)->Arg(128)->Arg(512);

void BM_IcpdaEpoch(benchmark::State& state) {
  // Full iCPDA epochs on one paper-density deployment: the end-to-end
  // number the T3 wall-clock-vs-N experiment tracks. The deployment is
  // built outside the timed region; each iteration is one epoch.
  // Always single-shard (the perf-baseline kernel must not drift with
  // the caller's ICPDA_SHARDS) — BM_IcpdaEpochSharded owns that axis.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto keys = bench::default_keys();
  net::NetworkConfig net_cfg = bench::paper_network(n, 0x9E3779B9);
  net_cfg.shards = 1;
  net::Network network(net_cfg);
  const core::IcpdaConfig cfg;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const std::uint64_t before = network.scheduler().executed();
    core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
    events += network.scheduler().executed() - before;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events_per_epoch"] = benchmark::Counter(
      static_cast<double>(events) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_IcpdaEpoch)->Arg(500)->Arg(1000)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_IcpdaEpochSharded(benchmark::State& state) {
  // The sharded engine on one constant-density deployment:
  // range(0) = N, range(1) = shard count. The field scales as
  // 20*sqrt(N) per side so neighbourhood size (and hence per-node
  // work) stays at the paper's density while N grows — at the default
  // 400x400 field, N=100k would be one giant collision domain.
  // Events come from the engine's own counters: in a sharded Network
  // scheduler() is a detached empty heap, so executed() reads zero.
  // parallel_fraction is the share of events drained inside concurrent
  // windows (vs the serialized gate) — the upper bound on speedup.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  const auto keys = bench::default_keys();
  net::NetworkConfig net_cfg = bench::paper_network(n, 0x9E3779B9);
  net_cfg.shards = shards;
  const double side = 20.0 * std::sqrt(static_cast<double>(n));
  net_cfg.field_width_m = side;
  net_cfg.field_height_m = side;
  net::Network network(net_cfg);
  const core::IcpdaConfig cfg;
  std::uint64_t parallel = 0, gated = 0, rounds = 0, gate_rounds = 0;
  std::uint64_t last_executed = 0;
  for (auto _ : state) {
    core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
    if (const net::ShardEngine* eng = network.shard_engine()) {
      // Engine stats are per-run (one run per epoch); executed() below
      // is cumulative, hence the delta.
      parallel += eng->stats().parallel_events;
      gated += eng->stats().gate_events;
      rounds += eng->stats().rounds;
      gate_rounds += eng->stats().gate_rounds;
    } else {
      parallel += network.scheduler().executed() - last_executed;
      last_executed = network.scheduler().executed();
    }
  }
  const double events = static_cast<double>(parallel + gated);
  state.SetItemsProcessed(static_cast<std::int64_t>(parallel + gated));
  state.counters["events_per_epoch"] =
      benchmark::Counter(events / static_cast<double>(state.iterations()));
  state.counters["parallel_fraction"] = benchmark::Counter(
      events > 0 ? static_cast<double>(parallel) / events : 1.0);
  state.counters["rounds_per_epoch"] = benchmark::Counter(
      static_cast<double>(rounds) / static_cast<double>(state.iterations()));
  state.counters["gate_round_fraction"] = benchmark::Counter(
      rounds > 0 ? static_cast<double>(gate_rounds) / static_cast<double>(rounds)
                 : 0.0);
}
BENCHMARK(BM_IcpdaEpochSharded)
    ->Args({2000, 1})
    ->Args({2000, 8})
    ->Unit(benchmark::kMillisecond);

void BM_ServicePipeline(benchmark::State& state) {
  // One continuous-query service run: 8 queries offered at 0.4 q/s —
  // past a single slot's capacity — with Arg() in-flight slots. The
  // arg=1/arg=4 pair prices the pipelining machinery itself: both runs
  // do the same protocol work, so the delta is mux routing plus the
  // shorter (overlapped) simulated horizon. Each iteration needs a
  // fresh Network (a Dispatcher run is one-shot), built untimed.
  const auto slots = static_cast<std::uint32_t>(state.range(0));
  const auto keys = bench::default_keys();
  std::uint64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    // The dispatcher drives network.scheduler() directly and is not
    // shard-aware (net/network.h): pin shards = 1 regardless of env.
    net::NetworkConfig net_cfg = bench::paper_network(200, 0x51CDA);
    net_cfg.shards = 1;
    net::Network network(net_cfg);
    service::ServiceConfig cfg;
    cfg.offered_load_qps = 0.4;
    cfg.query_count = 8;
    cfg.max_in_flight = slots;
    cfg.deadline_s = 1e9;  // complete everything: fixed work per run
    cfg.max_queue = 64;
    cfg.seed = 0x51CDA;
    service::Dispatcher dispatcher(network, cfg, &keys,
                                   proto::constant_reading(1.0));
    state.ResumeTiming();
    dispatcher.run();
    events += network.scheduler().executed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events_per_run"] = benchmark::Counter(
      static_cast<double>(events) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ServicePipeline)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_TopologyBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const net::Field field(400, 400);
  sim::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::make_random_topology(field, n, 50.0, rng));
  }
}
BENCHMARK(BM_TopologyBuild)->Arg(200)->Arg(600)->Arg(2000);

}  // namespace

// The smoke lane runs every registered benchmark, so the expensive T3
// scaling points (N=3000..5000 is minutes of wall-clock per pass) and
// the T5 sharded-engine scaling points (N up to 100k) are only
// registered under ICPDA_BIG_N=1 — used when regenerating
// BENCH_PR4.json / BENCH_PR9.json and the EXPERIMENTS.md T3/T5 tables.
int main(int argc, char** argv) {
  if (std::getenv("ICPDA_BIG_N")) {
    benchmark::RegisterBenchmark("BM_IcpdaEpoch", BM_IcpdaEpoch)
        ->Arg(3000)
        ->Arg(4000)
        ->Arg(5000)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark("BM_IcpdaEpochSharded", BM_IcpdaEpochSharded)
        ->Args({20000, 1})
        ->Args({20000, 8})
        ->Args({50000, 1})
        ->Args({50000, 8})
        ->Args({100000, 1})
        ->Args({100000, 8})
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
