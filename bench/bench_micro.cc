// Micro-benchmarks (google-benchmark): the hot kernels a deployment
// would care about — share generation / interpolation, sealing,
// PRF throughput, scheduler and topology construction.
#include <benchmark/benchmark.h>

#include "core/cpda_algebra.h"
#include "crypto/cipher.h"
#include "net/topology.h"
#include "sim/rng.h"
#include "sim/scheduler.h"

namespace {

using namespace icpda;

void BM_MakeShares(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(1);
  const auto seeds = core::default_seeds(m);
  const auto value = proto::Aggregate::of(23.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::make_shares(value, seeds, rng));
  }
}
BENCHMARK(BM_MakeShares)->Arg(3)->Arg(5)->Arg(8);

void BM_SolveClusterSum(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(2);
  const auto seeds = core::default_seeds(m);
  std::vector<proto::Aggregate> assembled(m);
  for (auto& a : assembled) a = proto::Aggregate::of(rng.uniform(0.0, 50.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_cluster_sum(seeds, assembled));
  }
}
BENCHMARK(BM_SolveClusterSum)->Arg(3)->Arg(5)->Arg(8);

void BM_SealOpen(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const auto key = crypto::Key::from_seed(7);
  const crypto::Bytes plain(bytes, 0x5A);
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    const auto sealed = crypto::seal(key, ++nonce, plain);
    benchmark::DoNotOptimize(crypto::open(key, sealed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_SealOpen)->Arg(32)->Arg(256)->Arg(4096);

void BM_Prf64(benchmark::State& state) {
  const auto key = crypto::Key::from_seed(9);
  const crypto::Bytes msg(64, 0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::prf64(key, msg));
  }
}
BENCHMARK(BM_Prf64);

void BM_SchedulerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    for (int i = 0; i < 1000; ++i) {
      sched.after(sim::micros(i % 97 + 1), [] {});
    }
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerChurn);

void BM_TopologyBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const net::Field field(400, 400);
  sim::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::make_random_topology(field, n, 50.0, rng));
  }
}
BENCHMARK(BM_TopologyBuild)->Arg(200)->Arg(600)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();
