// T2 [reconstructed] — cluster-size distribution vs the head
// probability pc: mean size (model: 1/pc), share of privacy-degraded
// clusters (size < 3) and lone heads.
#include <cstdio>

#include "analysis/models.h"
#include "bench/bench_util.h"
#include "core/icpda.h"
#include "sim/metrics.h"

int main() {
  using namespace icpda;
  bench::print_header(
      "T2: cluster formation vs pc (N=400)",
      "pc\tmean_size\tmodel_1/pc\tclusters\tlone_frac\tsmall_frac\tunclustered");
  const double pcs[] = {0.15, 0.2, 0.3, 0.4, 0.5};
  const auto keys = bench::default_keys();
  std::size_t row = 0;
  for (const double pc : pcs) {
    sim::RunningStats mean_size;
    sim::RunningStats lone;
    sim::RunningStats small;
    sim::RunningStats unclustered;
    for (int t = 0; t < bench::trials(); ++t) {
      net::Network network(
          bench::paper_network(400, bench::run_seed(bench::Experiment::kClusterFormation, row, static_cast<std::uint64_t>(t))));
      core::IcpdaConfig cfg;
      cfg.pc = pc;
      const auto out =
          core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
      double total = 0;
      double clusters = 0;
      double lone_n = 0;
      double small_n = 0;
      for (const auto& [size, count] : out.cluster_sizes) {
        total += static_cast<double>(size) * count;
        clusters += count;
        if (size == 1) lone_n += count;
        if (size < 3) small_n += count;
      }
      if (clusters > 0) {
        mean_size.add(total / clusters);
        lone.add(lone_n / clusters);
        small.add(small_n / clusters);
      }
      unclustered.add(out.unclustered);
    }
    std::printf("%.2f\t%.2f\t%.2f\t%llu\t%.3f\t%.3f\t%.1f\n", pc, mean_size.mean(),
                analysis::expected_cluster_size(pc),
                static_cast<unsigned long long>(mean_size.count()), lone.mean(),
                small.mean(), unclustered.mean());
    ++row;
  }
  return 0;
}
