// A3 (ablation) — small-cluster policy: what a lone head does with its
// reading. kClearReport preserves accuracy at a privacy cost;
// kDrop preserves privacy at an accuracy cost. The trade shifts with
// density (sparser networks mint more lone heads).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/icpda.h"
#include "sim/metrics.h"

int main() {
  using namespace icpda;
  bench::print_header("A3: small-cluster policy (accuracy vs privacy degradation)",
                      "N\tpolicy\taccuracy\tdegraded_privacy_nodes\tlone_heads");
  const auto keys = bench::default_keys();
  std::size_t row = 0;
  for (const std::size_t n : {200u, 400u, 600u}) {
    for (const auto policy :
         {core::SmallClusterPolicy::kClearReport, core::SmallClusterPolicy::kDrop}) {
      sim::RunningStats acc;
      sim::RunningStats degraded;
      sim::RunningStats lone;
      for (int t = 0; t < bench::trials(); ++t) {
        net::Network network(bench::paper_network(
            n, bench::run_seed(bench::Experiment::kClusterPolicy, row, static_cast<std::uint64_t>(t))));
        core::IcpdaConfig cfg;
        cfg.small_cluster_policy = policy;
        const auto out =
            core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
        if (out.result) acc.add(out.result->count / static_cast<double>(n - 1));
        degraded.add(out.degraded_privacy);
        double lone_n = 0;
        if (const auto it = out.cluster_sizes.find(1); it != out.cluster_sizes.end()) {
          lone_n = it->second;
        }
        lone.add(lone_n);
      }
      std::printf("%zu\t%s\t%.3f\t%.1f\t%.1f\n", n,
                  policy == core::SmallClusterPolicy::kClearReport ? "clear" : "drop",
                  acc.mean(), degraded.mean(), lone.mean());
      ++row;
    }
  }
  return 0;
}
